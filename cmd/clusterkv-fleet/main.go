// Command clusterkv-fleet drives the multi-replica fleet router with a
// synthetic shared-document QA load and prints a routing/load report per
// policy, mirroring clusterkv-serve's table at fleet granularity.
//
//	clusterkv-fleet                              # 4 replicas, affinity routing
//	clusterkv-fleet -policy all                  # compare affinity vs rr vs leastloaded
//	clusterkv-fleet -replicas 8 -requests 64
//	clusterkv-fleet -slo-ttft 150 -shed          # SLO-aware shedding (modeled ms)
//	clusterkv-fleet -rate 8                      # open-loop Poisson arrivals (streaming path)
//	clusterkv-fleet -trace out.json              # Chrome trace_event timeline (Perfetto)
//	clusterkv-fleet -metrics -                   # text metrics exposition on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"clusterkv"
)

func main() {
	var (
		replicas  = flag.Int("replicas", 4, "engine replicas behind the router")
		policy    = flag.String("policy", "affinity", "routing policy (affinity, rr, leastloaded, all)")
		sloTTFT   = flag.Float64("slo-ttft", 0, "modeled TTFT SLO in milliseconds (0 = none)")
		sloTBT    = flag.Float64("slo-tbt", 0, "modeled TBT SLO in milliseconds (0 = none)")
		shed      = flag.Bool("shed", false, "shed requests predicted to miss -slo-ttft on every replica")
		streams   = flag.Int("streams", 4, "per-replica concurrent decode streams (MaxBatch)")
		workers   = flag.Int("workers", 0, "per-replica round fan-out (0 = GOMAXPROCS)")
		kvBudget  = flag.Int64("kvbudget", 0, "per-replica device KV budget in per-head token slots (0 = unlimited)")
		requests  = flag.Int("requests", 16, "total requests in the load")
		docs      = flag.Int("docs", 4, "shared documents tenants ask about")
		docLen    = flag.Int("doclen", 1024, "document length (tokens)")
		qLen      = flag.Int("qlen", 32, "question suffix length (tokens)")
		newTok    = flag.Int("newtokens", 24, "tokens generated per request")
		budget    = flag.Int("budget", 256, "per-head KV budget for compressed methods")
		method    = flag.String("method", "clusterkv", "compression method (clusterkv, quest, fullkv)")
		loadKind  = flag.String("load", "qa", "workload shape: qa (shared-doc questions), chat (multi-turn sessions), agentic (re-entry loops), rag (templated retrieval); non-qa loads ignore -requests/-docs/-doclen/-qlen")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = deterministic closed-loop Run)")
		attr      = flag.Bool("attr", false, "per-request latency attribution: per-phase breakdown table per policy on the modeled clock (DESIGN.md §14); adds a span lane per request to -trace and clusterkv_attr_* series to -metrics")
		seed      = flag.Uint64("seed", 1, "master seed")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON timeline (router lane + one lane per replica; with -policy all, the file holds the last policy's run)")
		metricsTo = flag.String("metrics", "", "write text metrics exposition to this file after the run (\"-\" = stdout); one series set per policy, labeled policy=<name>")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f := mustCreate(*cpuProf)
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	var tracer *clusterkv.Tracer
	if *traceOut != "" {
		tracer = clusterkv.NewTracer(0)
	}
	var reg *clusterkv.MetricsRegistry
	if *metricsTo != "" {
		reg = clusterkv.NewMetricsRegistry()
	}

	var sel func() clusterkv.Selector
	switch strings.ToLower(*method) {
	case "clusterkv":
		sel = func() clusterkv.Selector { return clusterkv.New(clusterkv.DefaultConfig()) }
	case "quest":
		sel = func() clusterkv.Selector { return clusterkv.NewQuest(clusterkv.DefaultQuestConfig()) }
	case "fullkv":
		sel = nil
	default:
		fmt.Fprintf(os.Stderr, "unknown -method %q (clusterkv, quest, fullkv)\n", *method)
		os.Exit(2)
	}

	var policies []clusterkv.FleetPolicy
	if strings.ToLower(*policy) == "all" {
		policies = []clusterkv.FleetPolicy{
			clusterkv.FleetAffinity, clusterkv.FleetRoundRobin, clusterkv.FleetLeastLoaded,
		}
	} else {
		p, err := clusterkv.ParseFleetPolicy(*policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		policies = []clusterkv.FleetPolicy{p}
	}

	var load []clusterkv.QARequest
	var loadDesc string
	switch strings.ToLower(*loadKind) {
	case "qa":
		lc := clusterkv.DefaultLoadConfig()
		lc.Doc.Seed = *seed
		lc.NDocs = *docs
		lc.DocLen = *docLen
		lc.NRequests = *requests
		lc.QuestionLen = *qLen
		lc.MaxNewTokens = *newTok
		lc.RatePerSec = *rate
		load = clusterkv.NewLoad(lc)
		loadDesc = fmt.Sprintf("%d requests over %d shared docs (%d+%d prompt tokens, %d generated each)",
			*requests, *docs, *docLen, *qLen, *newTok)
	case "chat":
		cc := clusterkv.DefaultConversationConfig()
		cc.Doc.Seed = *seed
		cc.MaxNewTokens = *newTok
		load = clusterkv.ConversationLoad(cc)
		loadDesc = fmt.Sprintf("%d chat requests (%d sessions x %d turns, nested histories, %d generated each)",
			len(load), cc.Sessions, cc.Turns, *newTok)
	case "agentic":
		ac := clusterkv.DefaultAgenticConfig()
		ac.Doc.Seed = *seed
		ac.MaxNewTokens = *newTok
		load = clusterkv.AgenticLoad(ac)
		loadDesc = fmt.Sprintf("%d agentic requests (%d agents x %d steps, re-entrant contexts, %d generated each)",
			len(load), ac.Agents, ac.Steps, *newTok)
	case "rag":
		rc := clusterkv.DefaultRAGConfig()
		rc.Doc.Seed = *seed
		rc.MaxNewTokens = *newTok
		load = clusterkv.RAGLoad(rc)
		loadDesc = fmt.Sprintf("%d RAG requests (shared template, %d chunks each, %d generated each)",
			len(load), rc.ChunksPerRequest, *newTok)
	default:
		fmt.Fprintf(os.Stderr, "unknown -load %q (qa, chat, agentic, rag)\n", *loadKind)
		os.Exit(2)
	}
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
		}
		if sel != nil {
			reqs[i].Budget = *budget
			reqs[i].NewSelector = sel
		}
	}

	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	fmt.Printf("load: %s, method %s\n", loadDesc, *method)
	if *rate > 0 {
		fmt.Printf("arrivals: open-loop Poisson at %.2f req/s (live routing via TrySubmit)\n", *rate)
	} else {
		fmt.Printf("arrivals: closed loop (deterministic fleet Run)\n")
	}
	if *sloTTFT > 0 {
		fmt.Printf("slo: modeled ttft %.0fms (shed=%v)\n", *sloTTFT, *shed)
	}
	fmt.Printf("fleet: %d replicas, %d streams/replica, kv budget %v\n\n",
		*replicas, *streams, budgetStr(*kvBudget))

	type row struct {
		policy  string
		sum     clusterkv.FleetSummary
		elapsed time.Duration
	}
	var rows []row

	for _, p := range policies {
		ecfg := clusterkv.DefaultEngineConfig()
		ecfg.MaxBatch = *streams
		if *workers > 0 {
			ecfg.Workers = *workers
		}
		ecfg.KVBudget = *kvBudget
		ecfg.Seed = *seed
		if tracer != nil {
			// One policy per trace file: keep only the final policy's events
			// so replica lanes don't interleave across runs.
			tracer.Reset()
		}
		router := clusterkv.NewFleetRouter(m, clusterkv.FleetConfig{
			Replicas:    *replicas,
			Policy:      p,
			Engine:      ecfg,
			SLOTTFT:     *sloTTFT / 1e3,
			SLOTBT:      *sloTBT / 1e3,
			Shed:        *shed,
			Seed:        *seed,
			Trace:       tracer,
			Attribution: *attr,
		})
		start := time.Now()
		if *rate > 0 {
			tickets := make([]*clusterkv.FleetTicket, len(reqs))
			for i, req := range reqs {
				time.Sleep(time.Duration(load[i].Gap * float64(time.Second)))
				tickets[i] = router.Submit(req)
			}
			for _, tk := range tickets {
				tk.Wait()
			}
		} else {
			router.Run(reqs)
		}
		elapsed := time.Since(start)
		router.Close()
		sum := router.Summary()
		if reg != nil {
			router.FillRegistry(reg, clusterkv.ML("policy", p.String()))
		}
		fmt.Printf("== policy %s ==\n%s\n", p, sum)
		rows = append(rows, row{p.String(), sum, elapsed})
	}

	fmt.Printf("%-12s %9s %9s %13s %12s %10s %10s %9s %8s %5s %9s\n",
		"policy", "completed", "pfx hit%", "prefill toks", "pages saved",
		"ttft p50", "ttft p95", "tbt p50", "balance", "shed", "slo att")
	for _, r := range rows {
		s := r.sum
		fmt.Printf("%-12s %9d %8.0f%% %13d %12d %8.1fms %8.1fms %7.2fms %8.2f %5d %8.0f%%\n",
			r.policy, s.Completed, s.PrefixHitRate()*100, s.PrefillTokens, s.SavedPrefillPages,
			s.ModelTTFT.P50*1e3, s.ModelTTFT.P95*1e3, s.ModelTBT.P50*1e3,
			s.Balance, s.Shed, s.SLOAttainment*100)
	}

	if tracer != nil {
		if reg != nil {
			tracer.FillRegistry(reg)
		}
		f := mustCreate(*traceOut)
		err := clusterkv.WriteChromeTraceFrom(f, tracer)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) -> %s\n",
			tracer.Len(), tracer.Dropped(), *traceOut)
	}
	if reg != nil {
		w := os.Stdout
		if *metricsTo != "-" {
			w = mustCreate(*metricsTo)
			defer w.Close()
		}
		if err := reg.WriteText(w); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		f := mustCreate(*memProf)
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return f
}

func budgetStr(b int64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d slots", b)
}

// Command clusterkv-bench regenerates the paper's tables and figures
// (DESIGN.md §3 lists the experiment ids). Examples:
//
//	clusterkv-bench -exp all                  # every experiment, quick scale
//	clusterkv-bench -exp fig11a -ctx 32768    # paper-scale recall experiment
//	clusterkv-bench -exp tab1 -markdown       # Table I as markdown
//	clusterkv-bench -exp fleet -json bench/   # + machine-readable BENCH_fleet.json
//	clusterkv-bench -exp fleet -compare .     # regression-gate against ./BENCH_fleet.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"clusterkv/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig3a, fig3b, fig9, tab1, fig10, fig11a, fig11b, fig12, fig13a, fig13b, cache, overlap, ablations, parprefill, pagedkv, fleet, all)")
		ctx        = flag.Int("ctx", 8192, "max context length for trace experiments")
		modelCtx   = flag.Int("modelctx", 4096, "max context length for transformer-engine experiments")
		seed       = flag.Uint64("seed", 1, "master seed")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		jsonDir    = flag.String("json", "", "also write a schema-versioned BENCH_<exp>.json snapshot per experiment into this directory")
		compareDir = flag.String("compare", "", "diff each experiment against the baseline BENCH_<exp>.json in this directory and exit nonzero when a deterministic metric regresses")
		regressPct = flag.Float64("regress-pct", bench.DefaultRegressPct, "relative adverse change on a gated metric that fails -compare")
	)
	flag.Parse()

	opt := bench.Options{MaxCtx: *ctx, ModelCtx: *modelCtx, Seed: *seed}

	commit := ""
	if *jsonDir != "" {
		commit = gitCommit()
	}

	runners := bench.Registry()
	var ids []string
	if *exp == "all" {
		ids = bench.RegistryOrder()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	regressed := false
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(bench.RegistryOrder(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		reports := run(opt)
		for _, rep := range reports {
			if *markdown {
				fmt.Print(rep.Markdown())
			} else {
				fmt.Print(rep.String())
			}
			fmt.Println()
		}
		if *jsonDir != "" {
			path, err := bench.WriteSnapshot(*jsonDir, bench.NewSnapshot(id, commit, opt, reports))
			if err != nil {
				fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[%s snapshot -> %s]\n", id, path)
		}
		if *compareDir != "" {
			basePath := filepath.Join(*compareDir, fmt.Sprintf("BENCH_%s.json", id))
			baseline, err := bench.ReadSnapshot(basePath)
			switch {
			case os.IsNotExist(err):
				fmt.Fprintf(os.Stderr, "[%s: no baseline at %s, skipping compare]\n", id, basePath)
			case err != nil:
				fmt.Fprintf(os.Stderr, "baseline %s: %v\n", basePath, err)
				os.Exit(1)
			default:
				res, err := bench.Compare(baseline, bench.NewSnapshot(id, commit, opt, reports), *regressPct)
				if err != nil {
					fmt.Fprintf(os.Stderr, "compare %s: %v\n", id, err)
					os.Exit(1)
				}
				res.WriteTable(os.Stdout)
				fmt.Println()
				if !res.OK() {
					regressed = true
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "bench compare: deterministic metric regression detected")
		os.Exit(1)
	}
}

// gitCommit best-effort resolves the working tree's commit for snapshot
// provenance; "unknown" outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Command clusterkv-bench regenerates the paper's tables and figures
// (DESIGN.md §3 lists the experiment ids). Examples:
//
//	clusterkv-bench -exp all                  # every experiment, quick scale
//	clusterkv-bench -exp fig11a -ctx 32768    # paper-scale recall experiment
//	clusterkv-bench -exp tab1 -markdown       # Table I as markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clusterkv/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig3a, fig3b, fig9, tab1, fig10, fig11a, fig11b, fig12, fig13a, fig13b, cache, overlap, ablations, parprefill, pagedkv, fleet, all)")
		ctx      = flag.Int("ctx", 8192, "max context length for trace experiments")
		modelCtx = flag.Int("modelctx", 4096, "max context length for transformer-engine experiments")
		seed     = flag.Uint64("seed", 1, "master seed")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
	)
	flag.Parse()

	opt := bench.Options{MaxCtx: *ctx, ModelCtx: *modelCtx, Seed: *seed}

	runners := bench.Registry()
	var ids []string
	if *exp == "all" {
		ids = bench.RegistryOrder()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(bench.RegistryOrder(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		reports := run(opt)
		for _, rep := range reports {
			if *markdown {
				fmt.Print(rep.Markdown())
			} else {
				fmt.Print(rep.String())
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// Command clusterkv-serve drives the continuous-batching serving engine
// with a synthetic multi-tenant QA load (many questions over shared long
// documents) and prints a throughput/latency report comparing compression
// methods under identical load, plus the engine against serial
// one-at-a-time decode of the same request set.
//
//	clusterkv-serve                      # default: 8 streams, 16 requests
//	clusterkv-serve -streams 8 -requests 32 -doclen 2048
//	clusterkv-serve -rate 4              # open-loop Poisson arrivals, 4 req/s
//	clusterkv-serve -method clusterkv    # single method
//	clusterkv-serve -trace out.json      # Chrome trace_event timeline (Perfetto)
//	clusterkv-serve -metrics -           # text metrics exposition on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"clusterkv"
)

type methodSpec struct {
	name string
	sel  func() clusterkv.Selector // nil factory = full attention
}

func methods(which string) []methodSpec {
	all := []methodSpec{
		{"ClusterKV", func() clusterkv.Selector { return clusterkv.New(clusterkv.DefaultConfig()) }},
		{"Quest", func() clusterkv.Selector { return clusterkv.NewQuest(clusterkv.DefaultQuestConfig()) }},
		{"FullKV", nil},
	}
	if which == "all" {
		return all
	}
	var out []methodSpec
	for _, w := range strings.Split(which, ",") {
		w = strings.TrimSpace(strings.ToLower(w))
		for _, m := range all {
			if strings.ToLower(m.name) == w {
				out = append(out, m)
			}
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "unknown -method %q (clusterkv, quest, fullkv, all)\n", which)
		os.Exit(2)
	}
	return out
}

func main() {
	var (
		streams   = flag.Int("streams", 8, "concurrent decode streams (continuous-batching batch size)")
		workers   = flag.Int("workers", 0, "per-round decode step fan-out (0 = GOMAXPROCS); steps run on the shared intra-op pool, so effective concurrency is min(workers, intraop)")
		intraOp   = flag.Int("intraop", 0, "shared worker pool width for kernels AND step fan-out (0 = GOMAXPROCS); outputs are width-independent, -intraop 1 serializes everything")
		requests  = flag.Int("requests", 16, "total requests in the load")
		docs      = flag.Int("docs", 2, "shared documents tenants ask about")
		docLen    = flag.Int("doclen", 1024, "document length (tokens)")
		qLen      = flag.Int("qlen", 32, "question suffix length (tokens)")
		newTok    = flag.Int("newtokens", 24, "tokens generated per request")
		budget    = flag.Int("budget", 256, "per-head KV budget for compressed methods")
		kvBudget  = flag.Int64("kvbudget", 0, "device KV budget in per-head token slots (0 = unlimited); exact page accounting by default")
		hostBud   = flag.Int64("hostbudget", 0, "host-tier KV budget in per-head token slots (0 = single-tier); with -kvbudget set, admission gates on device+host and cold pages spill host-ward between rounds")
		syncXfer  = flag.Bool("synctransfers", false, "force synchronous KV transfers (no layer-ahead prefetch overlap)")
		worstCase = flag.Bool("worstcase", false, "revert to worst-case up-front KV reservations (pre-paged admission policy)")
		decodeKVQ = flag.Int("decodekvbits", 0, "int8-style quantized KV decode bit width (2..8, 0 = exact float path); quantized runs are deterministic per seed but not token-identical to serial, so -verify is disabled")
		batchDec  = flag.Bool("batchdecode", true, "run each round's decode streams as one lock-step batched cohort (one GEMM per weight matrix per round); bit-identical to per-stream decode")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		attrOn    = flag.Bool("attr", false, "per-request latency attribution: per-phase breakdown table on the modeled clock (DESIGN.md §14); adds a span lane per request to -trace and clusterkv_attr_* series to -metrics")
		seed      = flag.Uint64("seed", 1, "master seed")
		method    = flag.String("method", "all", "methods to serve (clusterkv, quest, fullkv, all)")
		loadKind  = flag.String("load", "qa", "workload shape: qa (shared-doc questions), chat (multi-turn sessions), agentic (re-entry loops), rag (templated retrieval); non-qa loads ignore -requests/-docs/-doclen/-qlen")
		noPrefix  = flag.Bool("noprefixcache", false, "disable the shared-prefix prefill cache")
		flatCache = flag.Bool("flatprefix", false, "use the flat whole-prefix cache instead of the radix tree (exact-match reuse only, no nested-prefix forking)")
		noSerial  = flag.Bool("noserial", false, "skip the serial one-at-a-time baseline")
		verifyOut = flag.Bool("verify", true, "check engine outputs match serial decode token-for-token")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run (load in chrome://tracing or Perfetto); with -method all each method gets its own process lane")
		metricsTo = flag.String("metrics", "", "write text metrics exposition to this file after the run (\"-\" = stdout); one series set per method, labeled method=<name>")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *decodeKVQ != 0 && *verifyOut {
		// The quantized decode path trades token identity with the exact
		// serial baseline for compute density (bounded-ULP contract).
		fmt.Println("note: -decodekvbits disables -verify (quantized decode is not token-identical to the serial float baseline)")
		*verifyOut = false
	}

	if *intraOp > 0 {
		clusterkv.SetIntraOpWorkers(*intraOp)
	}
	if *cpuProf != "" {
		f := mustCreate(*cpuProf)
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	var tracer *clusterkv.Tracer
	if *traceOut != "" {
		tracer = clusterkv.NewTracer(0)
	}
	var reg *clusterkv.MetricsRegistry
	if *metricsTo != "" {
		reg = clusterkv.NewMetricsRegistry()
	}

	var load []clusterkv.QARequest
	var loadDesc string
	switch strings.ToLower(*loadKind) {
	case "qa":
		lc := clusterkv.DefaultLoadConfig()
		lc.Doc.Seed = *seed
		lc.NDocs = *docs
		lc.DocLen = *docLen
		lc.NRequests = *requests
		lc.QuestionLen = *qLen
		lc.MaxNewTokens = *newTok
		lc.RatePerSec = *rate
		load = clusterkv.NewLoad(lc)
		loadDesc = fmt.Sprintf("%d requests over %d shared docs (%d+%d prompt tokens, %d generated each)",
			*requests, *docs, *docLen, *qLen, *newTok)
	case "chat":
		cc := clusterkv.DefaultConversationConfig()
		cc.Doc.Seed = *seed
		cc.MaxNewTokens = *newTok
		load = clusterkv.ConversationLoad(cc)
		loadDesc = fmt.Sprintf("%d chat requests (%d sessions x %d turns, nested histories, %d generated each)",
			len(load), cc.Sessions, cc.Turns, *newTok)
	case "agentic":
		ac := clusterkv.DefaultAgenticConfig()
		ac.Doc.Seed = *seed
		ac.MaxNewTokens = *newTok
		load = clusterkv.AgenticLoad(ac)
		loadDesc = fmt.Sprintf("%d agentic requests (%d agents x %d steps, re-entrant contexts, %d generated each)",
			len(load), ac.Agents, ac.Steps, *newTok)
	case "rag":
		rc := clusterkv.DefaultRAGConfig()
		rc.Doc.Seed = *seed
		rc.MaxNewTokens = *newTok
		load = clusterkv.RAGLoad(rc)
		loadDesc = fmt.Sprintf("%d RAG requests (shared template, %d chunks each, %d generated each)",
			len(load), rc.ChunksPerRequest, *newTok)
	default:
		fmt.Fprintf(os.Stderr, "unknown -load %q (qa, chat, agentic, rag)\n", *loadKind)
		os.Exit(2)
	}

	m := clusterkv.NewModel(clusterkv.DefaultModelConfig())
	fmt.Printf("load: %s\n", loadDesc)
	if *rate > 0 {
		fmt.Printf("arrivals: open-loop Poisson at %.2f req/s\n", *rate)
	} else {
		fmt.Printf("arrivals: closed loop (all requests queued up front)\n")
	}
	admission := fmt.Sprintf("exact pages (%d-token pages)", clusterkv.DefaultKVPageTokens)
	if *worstCase {
		admission = "worst-case reservation"
	} else if *hostBud > 0 && *kvBudget > 0 {
		admission = fmt.Sprintf("two-tier exact pages (device %d + host %d slots/head)", *kvBudget, *hostBud)
	}
	transfers := "async (layer-ahead prefetch)"
	if *syncXfer {
		transfers = "sync (blocking)"
	}
	fmt.Printf("transfers: %s\n", transfers)
	prefixCache := "radix"
	switch {
	case *noPrefix:
		prefixCache = "off"
	case *flatCache || *worstCase:
		prefixCache = "flat"
	}
	fmt.Printf("engine: %d streams, %d workers, intra-op pool %d, prefix cache %s, global KV budget %v, admission %s\n\n",
		*streams, effWorkers(*workers), clusterkv.IntraOpPool().Width(), prefixCache, budgetStr(*kvBudget), admission)

	type row struct {
		name                   string
		serialTokS, engineTokS float64
		speedup                float64
		ttftP50, ttftP95       float64
		tokP50                 float64
		prefillSaved           int64
		match                  string
	}
	var rows []row

	for mi, spec := range methods(*method) {
		reqs := buildRequests(load, spec, *budget)

		var serialSecs float64
		var serialTok int64
		var serialOut [][]int
		if !*noSerial {
			start := time.Now()
			serialOut = runSerial(m, reqs)
			serialSecs = time.Since(start).Seconds()
			for _, ts := range serialOut {
				serialTok += int64(len(ts))
			}
		}

		cfg := clusterkv.DefaultEngineConfig()
		cfg.MaxBatch = *streams
		if *workers > 0 {
			cfg.Workers = *workers
		}
		cfg.KVBudget = *kvBudget
		cfg.HostBudget = *hostBud
		cfg.SyncTransfers = *syncXfer
		cfg.WorstCaseAdmission = *worstCase
		cfg.DecodeKVBits = *decodeKVQ
		cfg.BatchDecode = *batchDec
		cfg.NoPrefixCache = *noPrefix
		cfg.FlatPrefixCache = *flatCache
		cfg.Seed = *seed
		cfg.Trace = tracer.Recorder(mi) // nil tracer -> disabled recorder
		cfg.Attribution = *attrOn
		eng := clusterkv.NewEngine(m, cfg)
		resps := dispatch(eng, reqs, load, *rate)
		eng.Close() // drain (incl. the transfer worker) before the snapshot
		mx := eng.Metrics()
		arenaPeak := eng.Arena().PeakPages()
		var attrSnap *clusterkv.AttributionSnapshot
		if a := eng.Attribution(); a != nil {
			s := a.Snapshot()
			attrSnap = &s
		}
		if reg != nil {
			ml := clusterkv.ML("method", strings.ToLower(spec.name))
			eng.FillRegistry(reg, ml)
			if attrSnap != nil {
				attrSnap.FillRegistry(reg, ml)
			}
		}

		failed, compared := 0, 0
		match := "n/a"
		for i, r := range resps {
			if r.Err != nil {
				failed++
				continue
			}
			if *verifyOut && serialOut != nil {
				compared++
				if !equalTokens(r.Tokens, serialOut[i]) {
					match = "NO"
				}
			}
		}
		if compared > 0 && match == "n/a" {
			match = "yes"
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d requests failed\n", spec.name, failed)
		}

		naivePrefill := int64(0)
		if mx.Completed > 0 {
			for _, q := range load {
				naivePrefill += int64(len(q.Prompt))
			}
		}
		r := row{
			name:         spec.name,
			engineTokS:   mx.Throughput(),
			ttftP50:      mx.TTFT.P50 * 1e3,
			ttftP95:      mx.TTFT.P95 * 1e3,
			tokP50:       mx.TokenLatency.P50 * 1e3,
			prefillSaved: naivePrefill - mx.PrefillTokens,
			match:        match,
		}
		if serialSecs > 0 {
			r.serialTokS = float64(serialTok) / serialSecs
			if r.engineTokS > 0 {
				r.speedup = r.engineTokS / r.serialTokS
			}
		}
		rows = append(rows, r)

		fmt.Printf("== %s ==\n%s", spec.name, mx.String())
		fmt.Printf("kv arena: peak %d live pages (%d tokens/page, shared prefix pages counted once)\n",
			arenaPeak, clusterkv.DefaultKVPageTokens)
		if *hostBud > 0 && !*worstCase {
			fmt.Printf("host tier: %d slots resident (peak %d of %d), %d slots spilled, device peak %d of %d\n",
				mx.KVHostUsed, mx.KVHostPeak, mx.KVHostCapacity, mx.KVSpilled, mx.KVDevicePeak, mx.KVCapacity)
		}
		if tr := mx.Transfer; tr.PrefetchedPages > 0 {
			fmt.Printf("prefetch: %.0f%% hit rate (%d of %d pages claimed by fetches, %d dropped), %.0f%% of transfer time hidden\n",
				tr.PrefetchHitRate()*100, tr.PrefetchHits, tr.PrefetchedPages, tr.PrefetchDropped,
				tr.HiddenFrac()*100)
		}
		if serialSecs > 0 {
			fmt.Printf("serial baseline: %.1f tok/s (one request at a time, full per-request prefill)\n", r.serialTokS)
			fmt.Printf("engine speedup:  %.2fx aggregate tokens/sec over serial decode\n", r.speedup)
		}
		if attrSnap != nil {
			attrSnap.WriteTable(os.Stdout)
		}
		fmt.Println()
	}

	// Summary table.
	fmt.Printf("%-10s %12s %12s %9s %10s %10s %10s %14s %6s\n",
		"method", "serial tok/s", "engine tok/s", "speedup", "ttft p50", "ttft p95", "tok p50", "prefill saved", "match")
	for _, r := range rows {
		serial := "-"
		speedup := "-"
		if r.serialTokS > 0 {
			serial = fmt.Sprintf("%.1f", r.serialTokS)
			speedup = fmt.Sprintf("%.2fx", r.speedup)
		}
		fmt.Printf("%-10s %12s %12.1f %9s %8.1fms %8.1fms %8.2fms %14d %6s\n",
			r.name, serial, r.engineTokS, speedup, r.ttftP50, r.ttftP95, r.tokP50, r.prefillSaved, r.match)
	}

	if tracer != nil {
		if reg != nil {
			tracer.FillRegistry(reg)
		}
		writeTrace(*traceOut, tracer)
	}
	if reg != nil {
		writeMetrics(*metricsTo, reg)
	}
	if *memProf != "" {
		f := mustCreate(*memProf)
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return f
}

func writeTrace(path string, tracer *clusterkv.Tracer) {
	f := mustCreate(path)
	err := clusterkv.WriteChromeTraceFrom(f, tracer)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) -> %s\n",
		tracer.Len(), tracer.Dropped(), path)
}

func writeMetrics(path string, reg *clusterkv.MetricsRegistry) {
	w := os.Stdout
	if path != "-" {
		w = mustCreate(path)
		defer w.Close()
	}
	if err := reg.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
}

func effWorkers(w int) int {
	if w > 0 {
		return w
	}
	return clusterkv.DefaultEngineConfig().Workers
}

func budgetStr(b int64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d slots", b)
}

func buildRequests(load []clusterkv.QARequest, spec methodSpec, budget int) []clusterkv.ServeRequest {
	reqs := make([]clusterkv.ServeRequest, len(load))
	for i, q := range load {
		reqs[i] = clusterkv.ServeRequest{
			Prompt:          q.Prompt,
			SharedPrefixLen: q.SharedPrefixLen,
			MaxNewTokens:    q.MaxNewTokens,
		}
		if spec.sel != nil {
			reqs[i].Budget = budget
			reqs[i].NewSelector = spec.sel
		}
	}
	return reqs
}

// runSerial is the status-quo replayer: one request at a time through the
// plain Sequence API, full prefill per request, greedy decode.
func runSerial(m *clusterkv.Model, reqs []clusterkv.ServeRequest) [][]int {
	out := make([][]int, len(reqs))
	logits := make([]float32, m.Config().VocabSize)
	for i, req := range reqs {
		var sel clusterkv.Selector
		if req.NewSelector != nil {
			sel = req.NewSelector()
		}
		seq := m.NewSequence(sel, req.Budget)
		seq.Prefill(req.Prompt, nil)
		tok := req.Prompt[len(req.Prompt)-1]
		toks := make([]int, 0, req.MaxNewTokens)
		for j := 0; j < req.MaxNewTokens; j++ {
			seq.DecodeInto(tok, logits)
			tok = argmax(logits)
			toks = append(toks, tok)
		}
		out[i] = toks
	}
	return out
}

// dispatch submits the load: closed-loop as one deterministic batch,
// open-loop with Poisson gaps between Submits.
func dispatch(eng *clusterkv.Engine, reqs []clusterkv.ServeRequest, load []clusterkv.QARequest, rate float64) []clusterkv.ServeResponse {
	if rate <= 0 {
		return eng.Run(reqs)
	}
	tickets := make([]*clusterkv.ServeTicket, len(reqs))
	for i, req := range reqs {
		time.Sleep(time.Duration(load[i].Gap * float64(time.Second)))
		tickets[i] = eng.Submit(req)
	}
	out := make([]clusterkv.ServeResponse, len(tickets))
	for i, tk := range tickets {
		out[i] = tk.Wait()
	}
	return out
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

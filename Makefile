GO ?= go

.PHONY: build test vet race bench serve clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verification: everything builds, vet is clean, tests pass with the
# race detector.
test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

serve:
	$(GO) run ./cmd/clusterkv-serve

clean:
	$(GO) clean ./...

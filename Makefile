GO ?= go

.PHONY: build test test-seq test-xfer-race test-fleet test-trace test-kernels test-batch vet race bench bench-smoke bench-json bench-compare serve clean

# Experiments with committed BENCH_<exp>.json baselines at the repo root —
# the perf trajectory the compare gate tracks (DESIGN.md §14).
BENCH_TRACKED = fleet,pagedkv,overlap,radix,kernels,decodebatch

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 verification: everything builds, vet is clean, tests pass with the
# race detector.
test: vet
	$(GO) test -race ./...

# Serial-schedule lane: the whole suite at GOMAXPROCS=1, locking the
# determinism contract's width-independent outputs (DESIGN.md §6).
test-seq:
	GOMAXPROCS=1 $(GO) test ./...

# Async transfer-runtime race lane: the serve engine and the kvcache/core
# transfer-path packages under the race detector at GOMAXPROCS=2, the
# narrowest schedule that still interleaves the background transfer worker
# with compute threads (DESIGN.md §8).
test-xfer-race:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/serve/ ./internal/kvcache/ ./internal/core/

# Fleet determinism lane: the multi-replica router suite at the serial
# schedule and at GOMAXPROCS=2 (race-enabled), locking identical placements,
# tokens and metrics across replica counts {1,2,4} (DESIGN.md §9).
test-fleet:
	GOMAXPROCS=1 $(GO) test -count=1 ./internal/fleet/
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/fleet/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Tracing determinism lane: re-run the serve and fleet determinism suites
# with the event tracer attached, locking the observability contract — a
# traced run is token- and round-identical to an untraced run at the serial
# schedule and under the race detector at GOMAXPROCS=2 (DESIGN.md §10).
test-trace:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'Trace' ./internal/serve/ ./internal/fleet/ ./internal/obs/
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Trace' ./internal/serve/ ./internal/fleet/ ./internal/obs/

# Machine-readable bench trajectory: refresh the committed BENCH_<exp>.json
# baselines at the repo root (typed metrics + options + seed + commit) for the
# experiments with headline numbers worth diffing across commits. Quick scale
# — not a measurement run. Run this (and commit the diff) whenever a change
# intentionally moves a gated metric.
bench-json:
	$(GO) run ./cmd/clusterkv-bench -exp $(BENCH_TRACKED) -json .

# Perf-regression trajectory gate: re-run the tracked experiments, diff every
# deterministic metric against the committed repo-root baselines, and fail on
# an adverse change beyond the threshold (wall-clock metrics only warn —
# DESIGN.md §14). Fresh snapshots land in bench-out/ as a CI artifact.
bench-compare:
	$(GO) run ./cmd/clusterkv-bench -exp $(BENCH_TRACKED) -json bench-out -compare .

# Kernel conformance lane: the blocked/packed/fused/quantized decode kernel
# suites at GOMAXPROCS=1 and at GOMAXPROCS=2 with the race detector, locking
# the bit-identity and bounded-ULP contracts of DESIGN.md §12 independently
# of the scheduler.
test-kernels:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'Blocked|DotRows|AddScaledRows|PackedMat|Fused|Quant|ComputeQuant|DecodeSteady' ./internal/tensor/ ./internal/attention/ ./internal/kvcache/ ./internal/model/
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Blocked|DotRows|AddScaledRows|PackedMat|Fused|Quant|ComputeQuant|DecodeSteady' ./internal/tensor/ ./internal/attention/ ./internal/kvcache/ ./internal/model/

# Batched-decode conformance lane: the cross-stream batched GEMM kernels and
# the BatchDecoder/engine bit-identity suites at GOMAXPROCS=1 and at
# GOMAXPROCS=2 with the race detector, locking that batched decode equals
# per-stream decode token-for-token at any cohort size and pool width
# (DESIGN.md §13).
test-batch:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'MatTMat|MatMulRows|BatchDecode' ./internal/tensor/ ./internal/model/ ./internal/serve/
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'MatTMat|MatMulRows|BatchDecode' ./internal/tensor/ ./internal/model/ ./internal/serve/

# Benchmark smoke lane: compile and run every benchmark in the module once,
# so perf-critical paths (serve engine, paged arena, parallel kernels) cannot
# silently rot into compile errors or panics. The `-exp fleet` experiment
# runs here via BenchmarkFleetRouting. Not a measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

serve:
	$(GO) run ./cmd/clusterkv-serve

clean:
	$(GO) clean ./...
